package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one benchmark result row.
type Benchmark struct {
	// Name is the benchmark name with the -N GOMAXPROCS suffix stripped
	// (BenchmarkFig7DetectionTime-8 → Fig7DetectionTime).
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in.
	Pkg        string  `json:"pkg"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are -1 when the run lacked -benchmem.
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric values (unit → value).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full parsed benchmark run.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` text output and collects every benchmark line.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			b.Pkg = pkg
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	return rep, nil
}

// parseBenchLine decodes one result row:
//
//	BenchmarkName-8   12   345 ns/op   67 B/op   8 allocs/op   1.5 widgets
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	name = strings.TrimPrefix(name, "Benchmark")
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	// The remainder is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	return b, true
}

// WriteJSON renders the report with stable formatting.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// runDiff compares two reports benchmark by benchmark and returns exit code 1
// when any benchmark's allocs/op grew by more than maxRegress percent, or —
// when nsTolerance is above zero — its ns/op grew by more than nsTolerance
// percent. The ns/op gate is opt-in because wall time is noisy; the tolerance
// is the accepted noise band, and improvements of any size always pass.
// Benchmarks whose baseline ns/op is below nsFloor are exempt from the
// wall-time gate entirely: with -benchtime=1x a sub-millisecond benchmark is
// one timer sample, so its delta is scheduler noise, not signal (the allocs
// gate, which is deterministic, still applies to them).
func runDiff(w io.Writer, oldPath, newPath string, maxRegress, nsTolerance, nsFloor float64) (int, error) {
	oldRep, err := readReport(oldPath)
	if err != nil {
		return 0, err
	}
	newRep, err := readReport(newPath)
	if err != nil {
		return 0, err
	}
	oldBy := map[string]Benchmark{}
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Pkg+"."+b.Name] = b
	}
	keys := make([]string, 0, len(newRep.Benchmarks))
	newBy := map[string]Benchmark{}
	for _, b := range newRep.Benchmarks {
		k := b.Pkg + "." + b.Name
		if _, ok := oldBy[k]; ok {
			keys = append(keys, k)
			newBy[k] = b
		}
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		return 0, fmt.Errorf("no common benchmarks between %s and %s", oldPath, newPath)
	}

	allocsFailed, nsFailed := false, false
	fmt.Fprintf(w, "%-44s %14s %14s %12s\n", "benchmark", "ns/op Δ", "allocs/op Δ", "gate")
	for _, k := range keys {
		o, n := oldBy[k], newBy[k]
		nsDelta := pctDelta(o.NsPerOp, n.NsPerOp)
		allocDelta := pctDelta(o.AllocsPerOp, n.AllocsPerOp)
		gate := "ok"
		if o.AllocsPerOp >= 0 && n.AllocsPerOp >= 0 && allocDelta > maxRegress {
			gate = "FAIL allocs"
			allocsFailed = true
		}
		if nsTolerance > 0 && o.NsPerOp >= nsFloor && nsDelta > nsTolerance {
			if gate == "FAIL allocs" {
				gate = "FAIL both"
			} else {
				gate = "FAIL ns"
			}
			nsFailed = true
		}
		fmt.Fprintf(w, "%-44s %+13.1f%% %+13.1f%% %12s\n", n.Name, nsDelta, allocDelta, gate)
		// Per-phase wall gate: custom metrics whose unit ends in -ns/op (the
		// crypto_hmac/por/pom span timings the telemetry benches report) get
		// the same tolerance as total ns/op, so a regression localized to one
		// phase fails by name even when it hides inside total-wall noise.
		// Metrics absent from the old report are new phases, not regressions.
		if nsTolerance <= 0 {
			continue
		}
		units := make([]string, 0, len(n.Metrics))
		for unit := range n.Metrics {
			if strings.HasSuffix(unit, "-ns/op") {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			oldV, ok := o.Metrics[unit]
			if !ok || oldV <= 0 || oldV < nsFloor {
				continue
			}
			delta := pctDelta(oldV, n.Metrics[unit])
			phaseGate := "ok"
			if delta > nsTolerance {
				phaseGate = "FAIL ns"
				nsFailed = true
			}
			fmt.Fprintf(w, "%-44s %+13.1f%% %14s %12s\n", "  "+n.Name+":"+strings.TrimSuffix(unit, "-ns/op"), delta, "", phaseGate)
		}
	}
	if allocsFailed {
		fmt.Fprintf(w, "benchjson: allocs/op regression beyond %.0f%% detected\n", maxRegress)
	}
	if nsFailed {
		fmt.Fprintf(w, "benchjson: ns/op regression beyond %.0f%% detected\n", nsTolerance)
	}
	if allocsFailed || nsFailed {
		return 1, nil
	}
	return 0, nil
}

func pctDelta(oldV, newV float64) float64 {
	if oldV <= 0 {
		return 0
	}
	return (newV - oldV) / oldV * 100
}

// phaseSnapshot is the slice of a g2g.telemetry/1 snapshot the phase table
// needs: the schema marker and the span records.
type phaseSnapshot struct {
	Schema string `json:"schema"`
	Spans  []struct {
		Name   string `json:"name"`
		Count  int64  `json:"count"`
		WallNS int64  `json:"wall_ns"`
		SelfNS int64  `json:"self_ns"`
		MeanNS int64  `json:"mean_ns"`
	} `json:"spans"`
}

// runPhases renders the per-phase span breakdown of a telemetry snapshot as a
// table: one row per phase in the snapshot's (declaration) order, with self
// time as a share of the total self time — the column that says where the
// wall clock actually went, since self time excludes nested phases and so
// sums without double counting.
func runPhases(w io.Writer, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap phaseSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(snap.Spans) == 0 {
		return fmt.Errorf("%s: no span records (schema %q) — was the run telemetry-enabled?", path, snap.Schema)
	}
	var totalSelf int64
	for _, sp := range snap.Spans {
		totalSelf += sp.SelfNS
	}
	fmt.Fprintf(w, "%-18s %12s %14s %14s %12s %7s\n",
		"phase", "count", "wall", "self", "mean", "self%")
	for _, sp := range snap.Spans {
		share := 0.0
		if totalSelf > 0 {
			share = float64(sp.SelfNS) / float64(totalSelf) * 100
		}
		fmt.Fprintf(w, "%-18s %12d %14s %14s %12s %6.1f%%\n",
			sp.Name, sp.Count,
			time.Duration(sp.WallNS).Round(time.Microsecond),
			time.Duration(sp.SelfNS).Round(time.Microsecond),
			time.Duration(sp.MeanNS).Round(time.Nanosecond),
			share)
	}
	return nil
}
