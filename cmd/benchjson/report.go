package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result row.
type Benchmark struct {
	// Name is the benchmark name with the -N GOMAXPROCS suffix stripped
	// (BenchmarkFig7DetectionTime-8 → Fig7DetectionTime).
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in.
	Pkg        string  `json:"pkg"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are -1 when the run lacked -benchmem.
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric values (unit → value).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full parsed benchmark run.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` text output and collects every benchmark line.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			b.Pkg = pkg
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	return rep, nil
}

// parseBenchLine decodes one result row:
//
//	BenchmarkName-8   12   345 ns/op   67 B/op   8 allocs/op   1.5 widgets
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	name = strings.TrimPrefix(name, "Benchmark")
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	// The remainder is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	return b, true
}

// WriteJSON renders the report with stable formatting.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// runDiff compares two reports benchmark by benchmark and returns exit code 1
// when any benchmark's allocs/op grew by more than maxRegress percent.
func runDiff(w io.Writer, oldPath, newPath string, maxRegress float64) (int, error) {
	oldRep, err := readReport(oldPath)
	if err != nil {
		return 0, err
	}
	newRep, err := readReport(newPath)
	if err != nil {
		return 0, err
	}
	oldBy := map[string]Benchmark{}
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Pkg+"."+b.Name] = b
	}
	keys := make([]string, 0, len(newRep.Benchmarks))
	newBy := map[string]Benchmark{}
	for _, b := range newRep.Benchmarks {
		k := b.Pkg + "." + b.Name
		if _, ok := oldBy[k]; ok {
			keys = append(keys, k)
			newBy[k] = b
		}
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		return 0, fmt.Errorf("no common benchmarks between %s and %s", oldPath, newPath)
	}

	failed := false
	fmt.Fprintf(w, "%-44s %14s %14s %12s\n", "benchmark", "ns/op Δ", "allocs/op Δ", "gate")
	for _, k := range keys {
		o, n := oldBy[k], newBy[k]
		nsDelta := pctDelta(o.NsPerOp, n.NsPerOp)
		allocDelta := pctDelta(o.AllocsPerOp, n.AllocsPerOp)
		gate := "ok"
		if o.AllocsPerOp >= 0 && n.AllocsPerOp >= 0 && allocDelta > maxRegress {
			gate = "FAIL"
			failed = true
		}
		fmt.Fprintf(w, "%-44s %+13.1f%% %+13.1f%% %12s\n", n.Name, nsDelta, allocDelta, gate)
	}
	if failed {
		fmt.Fprintf(w, "benchjson: allocs/op regression beyond %.0f%% detected\n", maxRegress)
		return 1, nil
	}
	return 0, nil
}

func pctDelta(oldV, newV float64) float64 {
	if oldV <= 0 {
		return 0
	}
	return (newV - oldV) / oldV * 100
}
