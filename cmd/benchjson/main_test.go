package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: give2get
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig7DetectionTime            1  54382400140 ns/op  9088368232 B/op  94583433 allocs/op
BenchmarkFig3Epidemic-8               1  2875354341 ns/op   2.000 tables  198249128 B/op  1221464 allocs/op
BenchmarkHeavyHMAC      	    9337	    128227 ns/op	   7.99 MB/s
PASS
ok  	give2get	100.0s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" {
		t.Fatalf("header not parsed: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(rep.Benchmarks))
	}
	fig7 := rep.Benchmarks[0]
	if fig7.Name != "Fig7DetectionTime" || fig7.Pkg != "give2get" {
		t.Fatalf("bad first benchmark: %+v", fig7)
	}
	if fig7.AllocsPerOp != 94583433 || fig7.BytesPerOp != 9088368232 || fig7.NsPerOp != 54382400140 {
		t.Fatalf("bad fig7 values: %+v", fig7)
	}
	fig3 := rep.Benchmarks[1]
	if fig3.Name != "Fig3Epidemic" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", fig3.Name)
	}
	if fig3.Metrics["tables"] != 2 {
		t.Fatalf("custom metric lost: %+v", fig3.Metrics)
	}
	hmac := rep.Benchmarks[2]
	if hmac.AllocsPerOp != -1 || hmac.BytesPerOp != -1 {
		t.Fatalf("missing -benchmem should report -1: %+v", hmac)
	}
	if hmac.Metrics["MB/s"] != 7.99 {
		t.Fatalf("throughput metric lost: %+v", hmac.Metrics)
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok\n")); err == nil {
		t.Fatal("want error on input without benchmarks")
	}
}

func writeReport(t *testing.T, dir, name string, r *Report) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := r.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffGate(t *testing.T) {
	dir := t.TempDir()
	oldRep := &Report{Benchmarks: []Benchmark{
		{Name: "A", Pkg: "p", NsPerOp: 100, AllocsPerOp: 1000, BytesPerOp: 1},
		{Name: "B", Pkg: "p", NsPerOp: 100, AllocsPerOp: 1000, BytesPerOp: 1},
		{Name: "OnlyOld", Pkg: "p", NsPerOp: 1, AllocsPerOp: 1, BytesPerOp: 1},
	}}
	pass := &Report{Benchmarks: []Benchmark{
		{Name: "A", Pkg: "p", NsPerOp: 90, AllocsPerOp: 1050, BytesPerOp: 1}, // +5%: inside gate
		{Name: "B", Pkg: "p", NsPerOp: 90, AllocsPerOp: 200, BytesPerOp: 1},
	}}
	fail := &Report{Benchmarks: []Benchmark{
		{Name: "A", Pkg: "p", NsPerOp: 90, AllocsPerOp: 1200, BytesPerOp: 1}, // +20%: fails
		{Name: "B", Pkg: "p", NsPerOp: 90, AllocsPerOp: 1000, BytesPerOp: 1},
	}}

	oldPath := writeReport(t, dir, "old.json", oldRep)
	var sb strings.Builder
	code, err := runDiff(&sb, oldPath, writeReport(t, dir, "pass.json", pass), 10, 0, 0)
	if err != nil || code != 0 {
		t.Fatalf("pass diff: code=%d err=%v\n%s", code, err, sb.String())
	}
	sb.Reset()
	code, err = runDiff(&sb, oldPath, writeReport(t, dir, "fail.json", fail), 10, 0, 0)
	if err != nil || code != 1 {
		t.Fatalf("fail diff: code=%d err=%v\n%s", code, err, sb.String())
	}
	if !strings.Contains(sb.String(), "FAIL") {
		t.Fatalf("diff output does not mark the regression:\n%s", sb.String())
	}
}

// TestDiffNsGate pins both directions of the wall-time gate: a regression
// beyond the tolerance fails, an improvement (or a regression inside the
// band) passes, and a zero tolerance disables the gate entirely.
func TestDiffNsGate(t *testing.T) {
	dir := t.TempDir()
	oldRep := &Report{Benchmarks: []Benchmark{
		{Name: "A", Pkg: "p", NsPerOp: 1000, AllocsPerOp: 100, BytesPerOp: 1},
		{Name: "B", Pkg: "p", NsPerOp: 1000, AllocsPerOp: 100, BytesPerOp: 1},
	}}
	oldPath := writeReport(t, dir, "old.json", oldRep)

	t.Run("regression beyond tolerance fails", func(t *testing.T) {
		slow := &Report{Benchmarks: []Benchmark{
			{Name: "A", Pkg: "p", NsPerOp: 1500, AllocsPerOp: 100, BytesPerOp: 1}, // +50%
			{Name: "B", Pkg: "p", NsPerOp: 1000, AllocsPerOp: 100, BytesPerOp: 1},
		}}
		var sb strings.Builder
		code, err := runDiff(&sb, oldPath, writeReport(t, dir, "slow.json", slow), 10, 25, 0)
		if err != nil || code != 1 {
			t.Fatalf("ns regression not gated: code=%d err=%v\n%s", code, err, sb.String())
		}
		if !strings.Contains(sb.String(), "FAIL ns") || !strings.Contains(sb.String(), "ns/op regression beyond 25%") {
			t.Fatalf("diff output does not name the ns gate:\n%s", sb.String())
		}
	})
	t.Run("improvement and in-band noise pass", func(t *testing.T) {
		fast := &Report{Benchmarks: []Benchmark{
			{Name: "A", Pkg: "p", NsPerOp: 400, AllocsPerOp: 100, BytesPerOp: 1},  // -60%: improvement
			{Name: "B", Pkg: "p", NsPerOp: 1100, AllocsPerOp: 100, BytesPerOp: 1}, // +10%: inside band
		}}
		var sb strings.Builder
		code, err := runDiff(&sb, oldPath, writeReport(t, dir, "fast.json", fast), 10, 25, 0)
		if err != nil || code != 0 {
			t.Fatalf("improvement failed the ns gate: code=%d err=%v\n%s", code, err, sb.String())
		}
	})
	t.Run("zero tolerance disables the gate", func(t *testing.T) {
		slow := &Report{Benchmarks: []Benchmark{
			{Name: "A", Pkg: "p", NsPerOp: 9000, AllocsPerOp: 100, BytesPerOp: 1}, // 9x slower
			{Name: "B", Pkg: "p", NsPerOp: 1000, AllocsPerOp: 100, BytesPerOp: 1},
		}}
		var sb strings.Builder
		code, err := runDiff(&sb, oldPath, writeReport(t, dir, "slow0.json", slow), 10, 0, 0)
		if err != nil || code != 0 {
			t.Fatalf("disabled ns gate still fired: code=%d err=%v\n%s", code, err, sb.String())
		}
	})
	t.Run("sub-floor microbenchmarks are exempt", func(t *testing.T) {
		// A at +800% would fail wildly, but its baseline (1000 ns) sits
		// under the floor: one timer sample of a microbenchmark is noise.
		// The allocs gate must keep covering it regardless.
		slow := &Report{Benchmarks: []Benchmark{
			{Name: "A", Pkg: "p", NsPerOp: 9000, AllocsPerOp: 100, BytesPerOp: 1},
			{Name: "B", Pkg: "p", NsPerOp: 1000, AllocsPerOp: 100, BytesPerOp: 1},
		}}
		var sb strings.Builder
		code, err := runDiff(&sb, oldPath, writeReport(t, dir, "floor.json", slow), 10, 25, 1e6)
		if err != nil || code != 0 {
			t.Fatalf("sub-floor benchmark gated: code=%d err=%v\n%s", code, err, sb.String())
		}
		sb.Reset()
		leaky := &Report{Benchmarks: []Benchmark{
			{Name: "A", Pkg: "p", NsPerOp: 9000, AllocsPerOp: 500, BytesPerOp: 1}, // +400% allocs
			{Name: "B", Pkg: "p", NsPerOp: 1000, AllocsPerOp: 100, BytesPerOp: 1},
		}}
		code, err = runDiff(&sb, oldPath, writeReport(t, dir, "floorleak.json", leaky), 10, 25, 1e6)
		if err != nil || code != 1 || !strings.Contains(sb.String(), "FAIL allocs") {
			t.Fatalf("allocs gate lost under ns floor: code=%d err=%v\n%s", code, err, sb.String())
		}
	})
	t.Run("both gates mark the row once", func(t *testing.T) {
		both := &Report{Benchmarks: []Benchmark{
			{Name: "A", Pkg: "p", NsPerOp: 1500, AllocsPerOp: 200, BytesPerOp: 1}, // +50% ns, +100% allocs
			{Name: "B", Pkg: "p", NsPerOp: 1000, AllocsPerOp: 100, BytesPerOp: 1},
		}}
		var sb strings.Builder
		code, err := runDiff(&sb, oldPath, writeReport(t, dir, "both.json", both), 10, 25, 0)
		if err != nil || code != 1 {
			t.Fatalf("double regression passed: code=%d err=%v\n%s", code, err, sb.String())
		}
		if !strings.Contains(sb.String(), "FAIL both") {
			t.Fatalf("row not marked for both gates:\n%s", sb.String())
		}
	})
}

// TestDiffPhaseMetricGate pins the per-phase wall gate: shared custom
// metrics with a -ns/op unit are held to the ns tolerance, metrics new in
// the after-report are ignored (new phases, not regressions), and non-ns
// custom metrics stay ungated.
func TestDiffPhaseMetricGate(t *testing.T) {
	dir := t.TempDir()
	oldRep := &Report{Benchmarks: []Benchmark{
		{Name: "A", Pkg: "p", NsPerOp: 1000, AllocsPerOp: 100, BytesPerOp: 1,
			Metrics: map[string]float64{"crypto_hmac-ns/op": 1000, "tables": 2}},
	}}
	oldPath := writeReport(t, dir, "old.json", oldRep)

	t.Run("phase regression fails by name", func(t *testing.T) {
		slow := &Report{Benchmarks: []Benchmark{
			{Name: "A", Pkg: "p", NsPerOp: 1000, AllocsPerOp: 100, BytesPerOp: 1,
				Metrics: map[string]float64{"crypto_hmac-ns/op": 2000, "tables": 2}}, // +100% phase time
		}}
		var sb strings.Builder
		code, err := runDiff(&sb, oldPath, writeReport(t, dir, "slow.json", slow), 10, 25, 0)
		if err != nil || code != 1 {
			t.Fatalf("phase regression not gated: code=%d err=%v\n%s", code, err, sb.String())
		}
		if !strings.Contains(sb.String(), "A:crypto_hmac") {
			t.Fatalf("phase row not named:\n%s", sb.String())
		}
	})
	t.Run("new phase and wild non-ns metrics pass", func(t *testing.T) {
		ok := &Report{Benchmarks: []Benchmark{
			{Name: "A", Pkg: "p", NsPerOp: 1000, AllocsPerOp: 100, BytesPerOp: 1,
				Metrics: map[string]float64{"crypto_hmac-ns/op": 1100, // +10%: inside band
					"pom-ns/op": 5000, // absent from old: ignored
					"tables":    90}}, // non-ns metric: never gated
		}}
		var sb strings.Builder
		code, err := runDiff(&sb, oldPath, writeReport(t, dir, "ok.json", ok), 10, 25, 0)
		if err != nil || code != 0 {
			t.Fatalf("in-band phase delta failed: code=%d err=%v\n%s", code, err, sb.String())
		}
	})
	t.Run("zero tolerance skips phase gate", func(t *testing.T) {
		slow := &Report{Benchmarks: []Benchmark{
			{Name: "A", Pkg: "p", NsPerOp: 1000, AllocsPerOp: 100, BytesPerOp: 1,
				Metrics: map[string]float64{"crypto_hmac-ns/op": 9000}},
		}}
		var sb strings.Builder
		code, err := runDiff(&sb, oldPath, writeReport(t, dir, "slow0.json", slow), 10, 0, 0)
		if err != nil || code != 0 {
			t.Fatalf("disabled phase gate fired: code=%d err=%v\n%s", code, err, sb.String())
		}
	})
}

// TestPhasesTable renders the span breakdown of a telemetry snapshot.
func TestPhasesTable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "telemetry.json")
	snap := `{
  "schema": "g2g.telemetry/1",
  "spans": [
    {"name": "session", "count": 10, "wall_ns": 5000000, "self_ns": 3000000, "mean_ns": 500000},
    {"name": "crypto_hmac", "count": 40, "wall_ns": 2000000, "self_ns": 2000000, "mean_ns": 50000}
  ]
}`
	if err := os.WriteFile(path, []byte(snap), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := runPhases(&sb, path); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{"session", "crypto_hmac", "60.0%", "40.0%", "5ms", "50µs"} {
		if !strings.Contains(got, want) {
			t.Errorf("phase table missing %q:\n%s", want, got)
		}
	}
	// The header row orders the columns the docs promise.
	if !strings.Contains(got, "phase") || !strings.Contains(got, "self%") {
		t.Errorf("phase table header malformed:\n%s", got)
	}
}

// TestPhasesErrors: a snapshot without spans (e.g. from a telemetry-disabled
// run) is an explicit error, not an empty table.
func TestPhasesErrors(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"schema":"g2g.telemetry/1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runPhases(&strings.Builder{}, empty); err == nil || !strings.Contains(err.Error(), "no span records") {
		t.Fatalf("spanless snapshot accepted: %v", err)
	}
	if err := runPhases(&strings.Builder{}, filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestDiffNoCommon(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "a.json", &Report{Benchmarks: []Benchmark{{Name: "A", Pkg: "p"}}})
	b := writeReport(t, dir, "b.json", &Report{Benchmarks: []Benchmark{{Name: "B", Pkg: "p"}}})
	if _, err := runDiff(&strings.Builder{}, a, b, 10, 0, 0); err == nil {
		t.Fatal("want error when no benchmarks overlap")
	}
}
