package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunPreset(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-preset", "cambridge06"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "communities") {
		t.Errorf("output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "community 0") {
		t.Errorf("no community listing:\n%s", out.String())
	}
}

func TestRunTraceFile(t *testing.T) {
	// A trace with two strong triangles and one weak bridge.
	const input = `# nodes=6 name=two-triangles
0 1 0 60
1 2 120 180
0 2 240 300
0 1 360 420
1 2 480 540
0 2 600 660
3 4 0 60
4 5 120 180
3 5 240 300
3 4 360 420
4 5 480 540
3 5 600 660
2 3 700 760
`
	path := filepath.Join(t.TempDir(), "trace.txt")
	if err := os.WriteFile(path, []byte(input), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if err := run([]string{"-trace", path}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2 communities") {
		t.Errorf("expected 2 communities:\n%s", out.String())
	}
}

func TestRunShardPlan(t *testing.T) {
	// Two triangle communities plus an isolated pair: the pair never forms a
	// 3-clique, so nodes 6 and 7 are outsiders and must appear hashed.
	const input = `# nodes=8 name=triangles-plus-pair
0 1 0 60
1 2 120 180
0 2 240 300
0 1 360 420
1 2 480 540
0 2 600 660
3 4 0 60
4 5 120 180
3 5 240 300
3 4 360 420
4 5 480 540
3 5 600 660
6 7 700 760
`
	path := filepath.Join(t.TempDir(), "trace.txt")
	if err := os.WriteFile(path, []byte(input), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if err := run([]string{"-trace", path, "-shards", "2"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"shard plan for 2 shards:",
		"community 0 (home of 3 nodes) -> shard",
		"community 1 (home of 3 nodes) -> shard",
		"outsider 6 -> shard",
		"(hashed)",
		"shard 0:",
		"shard 1:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
	// The plan keeps each community whole: its members land on one shard.
	if strings.Contains(got, "no home nodes") {
		t.Errorf("unexpected empty community:\n%s", got)
	}

	// Without -shards the plan block must not appear (back-compat output).
	out.Reset()
	if err := run([]string{"-trace", path}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "shard") {
		t.Errorf("plan printed without -shards:\n%s", out.String())
	}
}

func TestRunMissingTraceFile(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-trace", "/does/not/exist"}, &out, &errOut); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunUnknownPreset(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-preset", "bogus"}, &out, &errOut); err == nil {
		t.Error("unknown preset accepted")
	}
}
