// Command communities runs k-clique percolation community detection over a
// contact trace, the same procedure the "selfishness with outsiders"
// experiments use.
//
// Usage:
//
//	communities -preset infocom05
//	communities -trace contacts.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"give2get"
	"give2get/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "communities:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("communities", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		preset    = fs.String("preset", "infocom05", "trace preset (infocom05|cambridge06)")
		tracePath = fs.String("trace", "", "contact trace file, text or binary .g2gt (overrides -preset)")
		seed      = fs.Int64("seed", 42, "generation seed for presets")
	)
	var prof obs.Profiler
	prof.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := stopProf(); err == nil {
			err = cerr
		}
	}()

	var tr *give2get.Trace
	if *tracePath != "" {
		tr, err = give2get.OpenTrace(*tracePath)
		if err != nil {
			return err
		}
	} else {
		tr, err = give2get.GenerateTrace(give2get.Preset(*preset), *seed)
		if err != nil {
			return err
		}
	}

	comms, err := tr.Communities()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s: %d nodes, %d communities\n", tr.Name(), tr.Nodes(), len(comms))
	covered := make(map[int]struct{})
	for i, group := range comms {
		fmt.Fprintf(stdout, "  community %d (%d members): %v\n", i, len(group), group)
		for _, n := range group {
			covered[n] = struct{}{}
		}
	}
	var loners []int
	for n := 0; n < tr.Nodes(); n++ {
		if _, ok := covered[n]; !ok {
			loners = append(loners, n)
		}
	}
	if len(loners) > 0 {
		fmt.Fprintf(stdout, "  outside any community: %v\n", loners)
	}
	return nil
}
