// Command communities runs k-clique percolation community detection over a
// contact trace, the same procedure the "selfishness with outsiders"
// experiments use.
//
// Usage:
//
//	communities -preset infocom05
//	communities -trace contacts.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"give2get"
	"give2get/internal/kclique"
	"give2get/internal/obs"
	"give2get/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "communities:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("communities", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		preset    = fs.String("preset", "infocom05", "trace preset (infocom05|cambridge06)")
		tracePath = fs.String("trace", "", "contact trace file, text or binary .g2gt (overrides -preset)")
		seed      = fs.Int64("seed", 42, "generation seed for presets")
		shards    = fs.Int("shards", 0, "also print the node→shard plan for this many warm-up shards (the engine's -shards assignment)")
	)
	var prof obs.Profiler
	prof.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := stopProf(); err == nil {
			err = cerr
		}
	}()

	var tr *give2get.Trace
	if *tracePath != "" {
		tr, err = give2get.OpenTrace(*tracePath)
		if err != nil {
			return err
		}
	} else {
		tr, err = give2get.GenerateTrace(give2get.Preset(*preset), *seed)
		if err != nil {
			return err
		}
	}

	comms, err := tr.Communities()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s: %d nodes, %d communities\n", tr.Name(), tr.Nodes(), len(comms))
	covered := make(map[int]struct{})
	for i, group := range comms {
		fmt.Fprintf(stdout, "  community %d (%d members): %v\n", i, len(group), group)
		for _, n := range group {
			covered[n] = struct{}{}
		}
	}
	var loners []int
	for n := 0; n < tr.Nodes(); n++ {
		if _, ok := covered[n]; !ok {
			loners = append(loners, n)
		}
	}
	if len(loners) > 0 {
		fmt.Fprintf(stdout, "  outside any community: %v\n", loners)
	}
	if *shards > 1 {
		if err := printShardPlan(stdout, tr.Nodes(), comms, *shards); err != nil {
			return err
		}
	}
	return nil
}

// printShardPlan shows the exact node→shard assignment a sharded engine run
// (g2gsim/g2gexp -shards) derives from these communities: whole communities
// placed by longest-processing-time onto the least-loaded shard, outsiders
// hashed by node id. Nodes in several communities follow their lowest-id one.
func printShardPlan(stdout io.Writer, population int, comms [][]int, shards int) error {
	groups := make([][]trace.NodeID, len(comms))
	for i, g := range comms {
		groups[i] = make([]trace.NodeID, len(g))
		for j, n := range g {
			groups[i][j] = trace.NodeID(n)
		}
	}
	c, err := kclique.New(population, groups)
	if err != nil {
		return err
	}
	plan := kclique.PlanShards(c, population, shards)

	fmt.Fprintf(stdout, "shard plan for %d shards:\n", shards)
	for i := range comms {
		home, shard := 0, -1
		for n := 0; n < population; n++ {
			if of := c.Of(trace.NodeID(n)); len(of) > 0 && of[0] == i {
				home++
				shard = plan[n]
			}
		}
		if home == 0 {
			fmt.Fprintf(stdout, "  community %d: no home nodes (all members belong to lower communities)\n", i)
			continue
		}
		fmt.Fprintf(stdout, "  community %d (home of %d nodes) -> shard %d\n", i, home, shard)
	}
	for n := 0; n < population; n++ {
		if len(c.Of(trace.NodeID(n))) == 0 {
			fmt.Fprintf(stdout, "  outsider %d -> shard %d (hashed)\n", n, plan[n])
		}
	}
	load := make([]int, shards)
	for _, s := range plan {
		load[s]++
	}
	for s, n := range load {
		fmt.Fprintf(stdout, "  shard %d: %d nodes\n", s, n)
	}
	return nil
}
