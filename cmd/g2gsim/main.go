// Command g2gsim runs a single forwarding simulation and prints its
// metrics.
//
// Usage:
//
//	g2gsim -preset infocom05 -protocol g2g-epidemic -ttl 30m
//	g2gsim -trace contacts.txt -protocol epidemic -ttl 35m \
//	       -droppers 10 -outsiders
//	g2gsim -telemetry report.json -progress 10s -cpuprofile cpu.out
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"give2get"
	"give2get/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "g2gsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("g2gsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		preset    = fs.String("preset", "infocom05", "built-in trace preset (infocom05|cambridge06|campus-spatial)")
		tracePath = fs.String("trace", "", "contact trace file, text or binary .g2gt (overrides -preset)")
		proto     = fs.String("protocol", "g2g-epidemic", "forwarding protocol")
		ttl       = fs.Duration("ttl", 30*time.Minute, "message TTL Δ1 (Δ2 = 2×TTL)")
		seed      = fs.Int64("seed", 1, "simulation seed")
		window    = fs.Duration("window", 0, "experiment window start inside the trace (0 = auto)")
		interval  = fs.Duration("interval", 4*time.Second, "mean message inter-generation time")
		deviants  = fs.Int("deviants", 0, "number of deviating nodes")
		deviation = fs.String("deviation", "dropper", "deviation strategy (dropper|liar|cheater)")
		outsiders = fs.Bool("outsiders", false, "deviants spare their own community")
		realCrypt = fs.Bool("realcrypto", false, "use Ed25519/X25519/AES-GCM instead of the fast provider")
		audit     = fs.Bool("audit", false, "run the invariant auditor alongside the simulation; violations fail the run")
		repeats   = fs.Int("repeats", 1, "average the run over this many derived seeds (seed, seed+1, ...)")
		jobs      = fs.Int("jobs", 0, "concurrent runs when -repeats > 1 (0 = GOMAXPROCS)")
		events    = fs.String("events", "", "write a JSON-lines event log of the run to this file (legacy format)")
		telemetry = fs.String("telemetry", "", "write the JSON run report (counters, phase timings) to this file")
		tracelog  = fs.String("tracelog", "", "write a leveled JSON-lines trace of the run to this file")
		progress  = fs.Duration("progress", 0, "print a progress line to stderr at this wall-clock period (0 = off)")
		inspect   = fs.String("inspect", "", "serve a live run inspector on this address (e.g. :6060): JSON telemetry at /snapshot, SSE progress at /events, pprof under /debug/pprof/")
		ckptDir   = fs.String("checkpoint-dir", "", "directory for crash-safe state: SIGINT/SIGTERM flushes a checkpoint there, and -resume continues from it")
		ckptEvery = fs.Duration("checkpoint-every", 0, "virtual-time period between periodic checkpoints (0 = flush only on interruption)")
		resume    = fs.Bool("resume", false, "continue an interrupted run from the state in -checkpoint-dir")
		cryptoWrk = fs.Int("crypto-workers", 1, "intra-run crypto worker pool size (0 = all CPUs, 1 = sequential); results are identical at any value")
		shards    = fs.Int("shards", 1, "warm-up shard count (0 = all CPUs, 1 = sequential); results are identical at any value")
	)
	var prof obs.Profiler
	prof.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := stopProf(); err == nil {
			err = cerr
		}
	}()
	if *resume && *ckptDir == "" {
		return errors.New("-resume requires -checkpoint-dir")
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return err
		}
	}
	// SIGINT/SIGTERM cancel the run gracefully: the engine finishes the
	// instant in flight, flushes its checkpoint, and returns ErrInterrupted.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// The registry exists for the whole invocation when inspecting, so the
	// trace_load span below and every run (repeats included) aggregate into
	// the same live view.
	var reg *give2get.Metrics
	if *inspect != "" {
		reg = give2get.NewMetrics()
	}

	var tr *give2get.Trace
	traceStart := time.Now()
	if *tracePath != "" {
		tr, err = give2get.OpenTrace(*tracePath)
		if err != nil {
			return err
		}
	} else {
		tr, err = give2get.GenerateTrace(give2get.Preset(*preset), *seed)
		if err != nil {
			return err
		}
	}
	if reg != nil {
		d := time.Since(traceStart)
		reg.Spans.Note(obs.SpanTraceLoad, d, d)
	}

	if *inspect != "" {
		insp := &obs.Inspector{Addr: *inspect, Metrics: reg, Label: tr.Name()}
		stopInsp, err := insp.Start()
		if err != nil {
			return err
		}
		defer func() {
			if cerr := stopInsp(); err == nil {
				err = cerr
			}
		}()
		fmt.Fprintf(stderr, "g2gsim: inspector on http://%s (snapshot: /snapshot, events: /events, pprof: /debug/pprof/)\n",
			insp.BoundAddr())
	}

	cfg := give2get.SimulationConfig{
		Trace:           tr,
		Protocol:        give2get.Protocol(*proto),
		TTL:             *ttl,
		Seed:            *seed,
		WindowStart:     *window,
		MessageInterval: *interval,
		OnlyOutsiders:   *outsiders,
		RealCrypto:      *realCrypt,
		CryptoWorkers:   *cryptoWrk,
		Shards:          *shards,
		Registry:        reg,
		Context:         ctx,
	}
	if *cryptoWrk == 0 {
		cfg.CryptoWorkers = runtime.NumCPU()
	}
	if *shards == 0 {
		cfg.Shards = runtime.NumCPU()
	}
	if *deviants > 0 {
		cfg.Deviation = give2get.Deviation(*deviation)
		for i := 0; i < *deviants && i < tr.Nodes(); i++ {
			// Deterministic spread across the population.
			cfg.Deviants = append(cfg.Deviants, (i*7+int(*seed))%tr.Nodes())
		}
		cfg.Deviants = dedupe(cfg.Deviants)
	}

	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.Sink = give2get.NewLegacyEventSink(f)
	}
	if *tracelog != "" {
		f, err := os.Create(*tracelog)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.TraceJSON = f
	}
	if *progress > 0 {
		cfg.Progress = stderr
		cfg.ProgressInterval = *progress
	}
	if *audit {
		cfg.Audit = give2get.AuditConfig{Enabled: true}
	}

	if *repeats > 1 {
		scfg := give2get.SweepConfig{
			SimulationConfig: cfg, Repeats: *repeats, Jobs: *jobs,
		}
		if *ckptDir != "" {
			scfg.Journal = filepath.Join(*ckptDir, "sweep.journal")
			scfg.CheckpointDir = *ckptDir
			scfg.CheckpointEvery = *ckptEvery
			scfg.Resume = *resume
		}
		sweep, err := give2get.RunSweep(scfg)
		if err != nil {
			if errors.Is(err, give2get.ErrInterrupted) && *ckptDir != "" {
				fmt.Fprintf(stderr, "g2gsim: interrupted; state saved under %s (continue with -resume)\n", *ckptDir)
			}
			return err
		}
		fmt.Fprintf(stdout, "trace:       %s (%d nodes, %d contacts)\n", tr.Name(), tr.Nodes(), tr.Contacts())
		fmt.Fprintf(stdout, "protocol:    %s  ttl=%v  seeds=%d..%d\n", *proto, *ttl, *seed, *seed+int64(*repeats)-1)
		fmt.Fprintf(stdout, "success:     %.1f%% mean over %d repeats\n", sweep.SuccessRate, *repeats)
		fmt.Fprintf(stdout, "delay:       %v mean\n", sweep.MeanDelay.Round(time.Second))
		fmt.Fprintf(stdout, "cost:        %.2f replicas/msg total, %.2f at delivery\n",
			sweep.Cost, sweep.CostToDelivery)
		if *deviants > 0 {
			fmt.Fprintf(stdout, "deviants:    %d %ss (outsiders=%v)\n", len(cfg.Deviants), *deviation, *outsiders)
			fmt.Fprintf(stdout, "detection:   %.1f%% exposed mean\n", sweep.DetectionRate)
		}
		if *audit {
			// RunSweep promotes violations to errors, so reaching this point
			// means every repeat audited clean.
			fmt.Fprintf(stdout, "audit: ok (%d runs clean)\n", len(sweep.Runs))
		}
		return nil
	}

	ckptPath := ""
	if *ckptDir != "" {
		ckptPath = filepath.Join(*ckptDir, "run.ckpt")
		cfg.CheckpointPath = ckptPath
		cfg.CheckpointInterval = *ckptEvery
	}
	var res *give2get.Result
	if *resume {
		if _, statErr := os.Stat(ckptPath); errors.Is(statErr, os.ErrNotExist) {
			fmt.Fprintf(stderr, "g2gsim: no checkpoint at %s, starting fresh\n", ckptPath)
			res, err = give2get.Run(cfg)
		} else {
			res, err = give2get.Resume(ckptPath, cfg)
		}
	} else {
		res, err = give2get.Run(cfg)
	}
	if err != nil {
		if errors.Is(err, give2get.ErrInterrupted) && ckptPath != "" {
			fmt.Fprintf(stderr, "g2gsim: interrupted; checkpoint at %s (continue with -resume)\n", ckptPath)
		}
		return err
	}
	if ckptPath != "" {
		// A completed run needs no restart point; a stale one would make a
		// later -resume replay the wrong run.
		os.Remove(ckptPath)
	}
	fmt.Fprintf(stdout, "trace:       %s (%d nodes, %d contacts)\n", tr.Name(), tr.Nodes(), tr.Contacts())
	fmt.Fprintf(stdout, "protocol:    %s  ttl=%v  seed=%d\n", *proto, *ttl, *seed)
	fmt.Fprintf(stdout, "messages:    %d generated, %d delivered (%.1f%%)\n",
		res.Generated, res.Delivered, res.SuccessRate)
	fmt.Fprintf(stdout, "delay:       %v mean\n", res.MeanDelay.Round(time.Second))
	fmt.Fprintf(stdout, "cost:        %.2f replicas/msg total, %.2f at delivery\n",
		res.Cost, res.CostToDelivery)
	if *deviants > 0 {
		fmt.Fprintf(stdout, "deviants:    %d %ss (outsiders=%v)\n", len(cfg.Deviants), *deviation, *outsiders)
		fmt.Fprintf(stdout, "detection:   %.1f%% exposed, mean %v after TTL, %d false accusations\n",
			res.DetectionRate, res.MeanDetectionTime.Round(time.Second), res.FalseAccusations)
	}
	if rep := res.AuditReport; rep != nil {
		fmt.Fprintln(stdout, rep)
		if err := rep.Err(); err != nil {
			for _, v := range rep.Violations {
				fmt.Fprintln(stderr, "  ", v)
			}
			return err
		}
	}
	if *telemetry != "" {
		if err := writeTelemetry(*telemetry, res.Telemetry); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "telemetry:   %d events (%.0f events/s) -> %s\n",
			res.Telemetry.Sim.EventsFired, res.Telemetry.EventsPerSec(), *telemetry)
	}
	return nil
}

func writeTelemetry(path string, tel *give2get.Telemetry) error {
	b, err := json.MarshalIndent(tel, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func dedupe(in []int) []int {
	seen := make(map[int]struct{}, len(in))
	out := in[:0]
	for _, v := range in {
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}
