package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBasic(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{
		"-preset", "infocom05", "-protocol", "g2g-epidemic",
		"-ttl", "30m", "-interval", "2m",
	}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"protocol:", "messages:", "delay:", "cost:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "detection:") {
		t.Error("detection line printed without deviants")
	}
}

func TestRunWithDeviants(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{
		"-preset", "infocom05", "-protocol", "g2g-epidemic",
		"-ttl", "30m", "-interval", "2m",
		"-deviants", "5", "-deviation", "dropper",
	}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "detection:") {
		t.Errorf("no detection line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "0 false accusations") {
		t.Errorf("false accusations reported:\n%s", out.String())
	}
}

// TestRunSweepRepeats exercises the -repeats/-jobs path and checks the sweep
// report is identical at different job counts.
func TestRunSweepRepeats(t *testing.T) {
	sweep := func(jobs string) string {
		var out, errOut bytes.Buffer
		err := run([]string{
			"-preset", "infocom05", "-protocol", "g2g-epidemic",
			"-ttl", "30m", "-interval", "2m",
			"-repeats", "2", "-jobs", jobs,
		}, &out, &errOut)
		if err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	seq := sweep("1")
	if !strings.Contains(seq, "mean over 2 repeats") || !strings.Contains(seq, "seeds=1..2") {
		t.Errorf("sweep report:\n%s", seq)
	}
	if par := sweep("2"); par != seq {
		t.Errorf("sweep output differs between -jobs 1 and -jobs 2:\n%s\nvs\n%s", seq, par)
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "unknown protocol", args: []string{"-protocol", "bogus"}},
		{name: "unknown preset", args: []string{"-preset", "bogus"}},
		{name: "missing trace file", args: []string{"-trace", "/does/not/exist"}},
		{name: "bad flag", args: []string{"-nope"}},
		{name: "unknown deviation", args: []string{"-deviants", "3", "-deviation", "bogus", "-interval", "2m"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if err := run(tt.args, &out, &errOut); err == nil {
				t.Error("invalid invocation accepted")
			}
		})
	}
}

func TestRunTelemetryReport(t *testing.T) {
	dir := t.TempDir()
	report := filepath.Join(dir, "report.json")
	traceLog := filepath.Join(dir, "trace.jsonl")
	var out, errOut bytes.Buffer
	err := run([]string{
		"-preset", "infocom05", "-protocol", "g2g-epidemic",
		"-ttl", "30m", "-interval", "2m",
		"-telemetry", report, "-tracelog", traceLog,
		"-memprofile", filepath.Join(dir, "mem.out"),
	}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "telemetry:") {
		t.Errorf("no telemetry line:\n%s", out.String())
	}

	b, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Schema string `json:"schema"`
		Sim    struct {
			EventsFired int64 `json:"events_fired"`
		} `json:"sim"`
		Engine struct {
			MessagesGenerated int64 `json:"messages_generated"`
			Phases            struct {
				Window struct {
					WallNS int64 `json:"wall_ns"`
				} `json:"window"`
			} `json:"phases"`
		} `json:"engine"`
		Protocol struct {
			Wire map[string]json.RawMessage `json:"wire"`
		} `json:"protocol"`
		Crypto struct {
			Provider string `json:"provider"`
		} `json:"crypto"`
	}
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Schema == "" || snap.Sim.EventsFired == 0 || snap.Engine.MessagesGenerated == 0 ||
		len(snap.Protocol.Wire) == 0 || snap.Crypto.Provider == "" {
		t.Errorf("report missing subsystem data:\n%s", b)
	}
	if snap.Engine.Phases.Window.WallNS <= 0 {
		t.Errorf("report missing phase timings:\n%s", b)
	}

	tl, err := os.ReadFile(traceLog)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(tl, []byte(`"event":"generate"`)) {
		t.Errorf("trace log has no generate records:\n%.300s", tl)
	}
	if fi, err := os.Stat(filepath.Join(dir, "mem.out")); err != nil || fi.Size() == 0 {
		t.Errorf("heap profile not written: %v", err)
	}
}

// TestRunInspect exercises the -inspect path end to end: the run serves a
// live inspector, the stderr notice names the bound address, and the
// telemetry report carries the per-phase span table (trace_load from the CLI
// itself plus engine/protocol spans from inside the run).
func TestRunInspect(t *testing.T) {
	dir := t.TempDir()
	report := filepath.Join(dir, "report.json")
	var out, errOut bytes.Buffer
	err := run([]string{
		"-preset", "infocom05", "-protocol", "g2g-epidemic",
		"-ttl", "30m", "-interval", "2m",
		"-inspect", "127.0.0.1:0", "-telemetry", report,
	}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "inspector on http://127.0.0.1:") {
		t.Errorf("no inspector notice on stderr:\n%s", errOut.String())
	}

	b, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Spans []struct {
			Name   string `json:"name"`
			Count  int64  `json:"count"`
			WallNS int64  `json:"wall_ns"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool, len(snap.Spans))
	for _, sp := range snap.Spans {
		if sp.Count <= 0 || sp.WallNS < 0 {
			t.Errorf("span %s has bogus stats: %+v", sp.Name, sp)
		}
		got[sp.Name] = true
	}
	for _, want := range []string{"trace_load", "contact_schedule", "session", "relay", "test", "por", "crypto_hmac"} {
		if !got[want] {
			t.Errorf("span table missing %s: %v", want, snap.Spans)
		}
	}
}

func TestDedupe(t *testing.T) {
	got := dedupe([]int{3, 1, 3, 2, 1})
	if len(got) != 3 || got[0] != 3 || got[1] != 1 || got[2] != 2 {
		t.Errorf("dedupe = %v", got)
	}
}
