package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunBasic(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{
		"-preset", "infocom05", "-protocol", "g2g-epidemic",
		"-ttl", "30m", "-interval", "2m",
	}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"protocol:", "messages:", "delay:", "cost:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "detection:") {
		t.Error("detection line printed without deviants")
	}
}

func TestRunWithDeviants(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{
		"-preset", "infocom05", "-protocol", "g2g-epidemic",
		"-ttl", "30m", "-interval", "2m",
		"-deviants", "5", "-deviation", "dropper",
	}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "detection:") {
		t.Errorf("no detection line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "0 false accusations") {
		t.Errorf("false accusations reported:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "unknown protocol", args: []string{"-protocol", "bogus"}},
		{name: "unknown preset", args: []string{"-preset", "bogus"}},
		{name: "missing trace file", args: []string{"-trace", "/does/not/exist"}},
		{name: "bad flag", args: []string{"-nope"}},
		{name: "unknown deviation", args: []string{"-deviants", "3", "-deviation", "bogus", "-interval", "2m"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if err := run(tt.args, &out, &errOut); err == nil {
				t.Error("invalid invocation accepted")
			}
		})
	}
}

func TestDedupe(t *testing.T) {
	got := dedupe([]int{3, 1, 3, 2, 1})
	if len(got) != 3 || got[0] != 3 || got[1] != 1 || got[2] != 2 {
		t.Errorf("dedupe = %v", got)
	}
}
