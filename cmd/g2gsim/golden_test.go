package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// checkGolden compares got against the committed golden file, failing loudly
// on drift; -update rewrites the goldens instead.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with `go test ./cmd/... -update`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output drifted from %s — if intended, regenerate with `go test ./cmd/... -update`\n--- got ---\n%s--- want ---\n%s",
			path, got, want)
	}
}

// TestGolden pins the CLI's observable output byte for byte. Every field
// printed here is virtual-time deterministic (wall-clock metrics never reach
// stdout), so any diff is a behavior change in the stack below, not noise.
// The audited cases pin the canonical event-stream digest of the streaming
// scheduler; internal/engine's TestAuditDifferentialScheduling separately
// proves that digest identical to the legacy pre-scheduled path, so together
// they anchor both schedulers to the committed goldens.
func TestGolden(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{
			// The generated preset exercises the full honest G2G pipeline
			// with the auditor attached; the audit line pins the canonical
			// event-stream digest.
			name: "preset-g2g-epidemic-audit",
			args: []string{"-preset", "infocom05", "-protocol", "g2g-epidemic",
				"-ttl", "10m", "-interval", "60s", "-audit"},
		},
		{
			// The committed CRAWDAD file exercises the parser path.
			name: "trace-epidemic",
			args: []string{"-trace", "testdata/contacts.txt", "-protocol", "epidemic",
				"-ttl", "20m", "-interval", "2m"},
		},
		{
			name: "trace-droppers-audit",
			args: []string{"-trace", "testdata/contacts.txt", "-protocol", "g2g-epidemic",
				"-ttl", "20m", "-interval", "2m", "-deviants", "2", "-deviation", "dropper", "-audit"},
		},
		{
			name: "sweep-delegation-audit",
			args: []string{"-preset", "cambridge06", "-protocol", "delegation-frequency",
				"-ttl", "10m", "-interval", "2m", "-repeats", "2", "-jobs", "2", "-audit"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if err := run(tc.args, &out, &errOut); err != nil {
				t.Fatalf("%v\nstderr:\n%s", err, errOut.String())
			}
			checkGolden(t, tc.name, out.Bytes())
		})
	}
}
