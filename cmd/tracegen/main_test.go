package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"give2get"
)

func TestRunStats(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-preset", "infocom05", "-stats"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"nodes:", "contacts:", "communities:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stats output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunWritesParseableTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.txt")
	var out, errOut bytes.Buffer
	if err := run([]string{"-preset", "cambridge06", "-seed", "7", "-out", path}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := give2get.ParseTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Nodes() != 36 {
		t.Errorf("nodes = %d, want 36", tr.Nodes())
	}
	if tr.Contacts() == 0 {
		t.Error("no contacts written")
	}
}

func TestRunUnknownPreset(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-preset", "bogus"}, &out, &errOut); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &out, &errOut); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunWritesBinaryByExtension(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.g2gt")
	var out, errOut bytes.Buffer
	if err := run([]string{"-preset", "infocom05", "-seed", "7", "-out", path}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	tr, err := give2get.OpenTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Nodes() != 41 {
		t.Errorf("nodes = %d, want 41", tr.Nodes())
	}
	if tr.Contacts() <= 0 {
		t.Errorf("contacts = %d", tr.Contacts())
	}
}

func TestRunLarge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "large.g2gt")
	var out, errOut bytes.Buffer
	args := []string{"-large", "-communities", "8", "-community-size", "4",
		"-across-degree", "1", "-hours", "3", "-run-contacts", "1024", "-out", path}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	tr, err := give2get.OpenTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Nodes() != 32 {
		t.Errorf("nodes = %d, want 32", tr.Nodes())
	}
	if tr.Contacts() <= 0 {
		t.Errorf("contacts = %d", tr.Contacts())
	}
	if !strings.Contains(out.String(), "contacts") {
		t.Errorf("missing summary line:\n%s", out.String())
	}
}

func TestRunLargeRequiresBinaryOut(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-large", "-out", "x.txt"}, &out, &errOut); err == nil {
		t.Error("-large with text output accepted")
	}
	if err := run([]string{"-large"}, &out, &errOut); err == nil {
		t.Error("-large without -out accepted")
	}
}
