// Command tracegen generates a synthetic contact trace and writes it in the
// CRAWDAD-style format the rest of the toolchain parses.
//
// Usage:
//
//	tracegen -preset infocom05 -seed 42 -out infocom.txt
//	tracegen -preset cambridge06 -stats        # print stats only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"give2get"
	"give2get/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		preset    = fs.String("preset", "infocom05", "trace preset (infocom05|cambridge06|campus-spatial)")
		seed      = fs.Int64("seed", 42, "generation seed")
		out       = fs.String("out", "", "output file (default stdout)")
		statsOnly = fs.Bool("stats", false, "print statistics instead of the trace")
		ccdf      = fs.Bool("ccdf", false, "print the inter-contact time CCDF instead of the trace")
	)
	var prof obs.Profiler
	prof.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := stopProf(); err == nil {
			err = cerr
		}
	}()

	tr, err := give2get.GenerateTrace(give2get.Preset(*preset), *seed)
	if err != nil {
		return err
	}
	if *statsOnly {
		s := tr.Stats()
		fmt.Fprintf(stdout, "name:               %s\n", tr.Name())
		fmt.Fprintf(stdout, "nodes:              %d\n", s.Nodes)
		fmt.Fprintf(stdout, "contacts:           %d\n", s.Contacts)
		fmt.Fprintf(stdout, "span:               %v\n", s.Span)
		fmt.Fprintf(stdout, "mean contact:       %v\n", s.MeanContact.Round(time.Second))
		fmt.Fprintf(stdout, "mean inter-contact: %v\n", s.MeanInterContact.Round(time.Second))
		comms, err := tr.Communities()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "communities:        %d %v\n", len(comms), comms)
		return nil
	}

	if *ccdf {
		for _, p := range tr.InterContactCCDF(40) {
			fmt.Fprintf(stdout, "%.0f %.4f\n", p.T.Seconds(), p.Fraction)
		}
		return nil
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return tr.Write(w)
}
