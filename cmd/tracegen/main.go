// Command tracegen generates a synthetic contact trace. Presets write either
// the CRAWDAD-style text format or, when the output file has the .g2gt
// extension, the compact sorted binary format the toolchain streams. The
// -large mode generates community traces far beyond what fits in memory
// (hundreds of thousands of nodes) by streaming an external merge sort
// straight to a binary file.
//
// Usage:
//
//	tracegen -preset infocom05 -seed 42 -out infocom.txt
//	tracegen -preset cambridge06 -out cambridge.g2gt   # binary by extension
//	tracegen -preset cambridge06 -stats                # print stats only
//	tracegen -large -communities 25000 -community-size 4 -hours 8 -out big.g2gt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"give2get"
	"give2get/internal/mobility"
	"give2get/internal/obs"
	"give2get/internal/sim"
	"give2get/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		preset    = fs.String("preset", "infocom05", "trace preset (infocom05|cambridge06|campus-spatial)")
		seed      = fs.Int64("seed", 42, "generation seed")
		out       = fs.String("out", "", "output file; a .g2gt extension selects the binary format (default stdout, text)")
		statsOnly = fs.Bool("stats", false, "print statistics instead of the trace")
		ccdf      = fs.Bool("ccdf", false, "print the inter-contact time CCDF instead of the trace")

		large      = fs.Bool("large", false, "generate a large community trace out-of-core (requires -out with .g2gt extension)")
		comms      = fs.Int("communities", 1000, "large mode: number of communities")
		commSize   = fs.Int("community-size", 10, "large mode: nodes per community")
		acrossDeg  = fs.Int("across-degree", 2, "large mode: cross-community bridge pairs per node")
		hours      = fs.Float64("hours", 12, "large mode: trace duration in hours")
		name       = fs.String("name", "large", "large mode: trace name")
		runBufSize = fs.Int("run-contacts", 0, "large mode: external-sort run buffer in contacts (0 = default)")
	)
	var prof obs.Profiler
	prof.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := stopProf(); err == nil {
			err = cerr
		}
	}()

	if *large {
		return runLarge(stdout, *out, *name, *seed, *comms, *commSize, *acrossDeg, *hours, *runBufSize)
	}

	tr, err := give2get.GenerateTrace(give2get.Preset(*preset), *seed)
	if err != nil {
		return err
	}
	if *statsOnly {
		s, err := tr.Stats()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "name:               %s\n", tr.Name())
		fmt.Fprintf(stdout, "nodes:              %d\n", s.Nodes)
		fmt.Fprintf(stdout, "contacts:           %d\n", s.Contacts)
		fmt.Fprintf(stdout, "span:               %v\n", s.Span)
		fmt.Fprintf(stdout, "mean contact:       %v\n", s.MeanContact.Round(time.Second))
		fmt.Fprintf(stdout, "mean inter-contact: %v\n", s.MeanInterContact.Round(time.Second))
		comms, err := tr.Communities()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "communities:        %d %v\n", len(comms), comms)
		return nil
	}

	if *ccdf {
		points, err := tr.InterContactCCDF(40)
		if err != nil {
			return err
		}
		for _, p := range points {
			fmt.Fprintf(stdout, "%.0f %.4f\n", p.T.Seconds(), p.Fraction)
		}
		return nil
	}

	if *out != "" {
		// Atomic publish: a crash or full disk never leaves a torn trace
		// file where a later run would try to read one.
		return trace.WriteFileAtomic(*out, func(w io.Writer) error {
			if strings.HasSuffix(*out, trace.BinaryExt) {
				return tr.WriteBinary(w)
			}
			return tr.Write(w)
		})
	}
	return tr.Write(stdout)
}

// runLarge streams a GenerateLarge trace through an external merge sort into
// a sorted binary file, never holding more than one run buffer in memory.
func runLarge(stdout io.Writer, out, name string, seed int64, comms, commSize, acrossDeg int, hours float64, runContacts int) error {
	if out == "" {
		return fmt.Errorf("-large requires -out")
	}
	if !strings.HasSuffix(out, trace.BinaryExt) {
		return fmt.Errorf("-large writes the binary format: -out needs the %s extension", trace.BinaryExt)
	}
	cfg := mobility.LargeConfig{
		Name:          name,
		Communities:   comms,
		CommunitySize: commSize,
		AcrossDegree:  acrossDeg,
		Duration:      sim.Time(hours * float64(sim.Hour)),
		// The preset pair dynamics: dense bursty re-meetings inside a
		// community, sparse long-gap bridges across.
		Within:            mobility.PairParams{ShortGap: 12 * sim.Minute, LongGap: 150 * sim.Minute, BurstProb: 0.6},
		Across:            mobility.PairParams{ShortGap: 25 * sim.Minute, LongGap: 8 * sim.Hour, BurstProb: 0.35},
		ContactMean:       100 * sim.Second,
		SociabilitySpread: 0.5,
	}
	w := trace.NewExtWriter(out, name, cfg.Nodes(), trace.ExtOptions{RunContacts: runContacts})
	start := time.Now()
	if err := mobility.GenerateLarge(cfg, seed, w.Add); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	info, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s: %d nodes, %d contacts, %d sorted runs, %d bytes, %v\n",
		out, cfg.Nodes(), w.Len(), w.Runs(), info.Size(), time.Since(start).Round(time.Millisecond))
	return nil
}
