module give2get

go 1.22
