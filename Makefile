GO ?= go

.PHONY: all build test vet race bench check ci

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The concurrency-sensitive packages: atomic counters and sinks shared across
# goroutines (obs, metrics), the engine run under the runner's worker pool,
# and the runner and experiments schedulers themselves.
race:
	$(GO) test -race -timeout 30m ./internal/obs ./internal/metrics ./internal/engine ./internal/runner ./internal/experiments

# One iteration per benchmark: smoke-checks the paper-artifact benches and
# BenchmarkTelemetryOverhead without the full measurement cost.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

check: build vet test race

# ci is the documented verification entry point: build, vet, the full test
# suite, the race pass, and a quick-mode experiment smoke run through the
# parallel scheduler.
ci: build vet test race
	$(GO) run ./cmd/g2gexp -experiment secV -quick -jobs 0 >/dev/null
	@echo "ci: OK"
