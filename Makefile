GO ?= go
FUZZTIME ?= 10s
COVER_FLOOR ?= 70
# Benchmark-gate harness knobs (see DESIGN.md "Performance").
BENCH_OUT ?= BENCH_after.json
BENCH_OLD ?= BENCH_baseline.json
BENCH_NEW ?= BENCH_after.json
BENCH_MAX_REGRESS ?= 10
# Wall-time gate: fail bench-diff when ns/op regresses beyond this percent
# (wide because single-iteration wall times are noisy; 0 disables).
BENCH_NS_TOLERANCE ?= 25
# Benchmarks whose baseline ns/op is below this floor (1ms) are exempt from
# the wall gate: at -benchtime=1x they are a single timer sample.
BENCH_NS_FLOOR ?= 1000000

.PHONY: all build test vet race bench bench-smoke bench-diff fuzz cover trace-roundtrip kill-resume crypto-matrix shard-matrix check ci

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The concurrency-sensitive packages: atomic counters and sinks shared across
# goroutines (obs, metrics), the engine run under the runner's worker pool,
# and the runner and experiments schedulers themselves.
race:
	$(GO) test -race -timeout 30m ./internal/obs ./internal/metrics ./internal/engine ./internal/runner ./internal/experiments

# Measurement run: every benchmark once with -benchmem, converted to the
# machine-readable BENCH_*.json interchange format by cmd/benchjson. The
# paper-artifact benches are whole audited simulations, so one iteration is
# already a stable measurement; BENCH_OUT defaults to BENCH_after.json so
# `make bench && make bench-diff` gates a working tree against the committed
# BENCH_baseline.json.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -timeout 60m -run='^$$' . ./internal/... >bench_output.txt; \
	status=$$?; cat bench_output.txt; \
	if [ $$status -ne 0 ]; then rm -f bench_output.txt; exit $$status; fi
	$(GO) run ./cmd/benchjson -in bench_output.txt -o $(BENCH_OUT)
	@rm -f bench_output.txt
	@echo "bench: wrote $(BENCH_OUT)"

# One iteration per benchmark with telemetry collection on: smoke-checks that
# every bench still runs AND that the per-phase span pipeline works end to end
# (the experiment benches record into a shared registry, the snapshot lands in
# bench_telemetry.json, and benchjson renders its phase table). Wired into ci.
bench-smoke:
	G2G_BENCH_TELEMETRY=$(CURDIR)/bench_telemetry.json $(GO) test -bench=. -benchtime=1x -run='^$$' ./...
	$(GO) run ./cmd/benchjson -phases bench_telemetry.json
	@rm -f bench_telemetry.json

# Compare two BENCH_*.json reports; exits non-zero when allocs/op on any
# shared benchmark regresses by more than BENCH_MAX_REGRESS percent, or ns/op
# by more than BENCH_NS_TOLERANCE percent (benchmarks with a baseline under
# BENCH_NS_FLOOR ns sit below one reliable timer sample at -benchtime=1x and
# are exempt from the wall gate, never the allocs gate).
bench-diff:
	$(GO) run ./cmd/benchjson -diff -max-regress $(BENCH_MAX_REGRESS) -ns-tolerance $(BENCH_NS_TOLERANCE) -ns-floor $(BENCH_NS_FLOOR) $(BENCH_OLD) $(BENCH_NEW)

# Native fuzzing over every parser/validator entry point. Go allows one
# -fuzz target per invocation, so each runs for FUZZTIME in turn. Plain
# `go test` already replays the committed seed corpora.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParseTrace -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzParseBinaryTrace -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzUnmarshalSigned -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -run='^$$' -fuzz=FuzzParseKind -fuzztime=$(FUZZTIME) ./internal/protocol
	$(GO) test -run='^$$' -fuzz=FuzzParamsValidate -fuzztime=$(FUZZTIME) ./internal/protocol
	$(GO) test -run='^$$' -fuzz=FuzzParseCheckpoint -fuzztime=$(FUZZTIME) ./internal/engine
	$(GO) test -run='^$$' -fuzz=FuzzBatchVerify -fuzztime=$(FUZZTIME) ./internal/g2gcrypto
	$(GO) test -run='^$$' -fuzz=FuzzShardPlan -fuzztime=$(FUZZTIME) ./internal/kclique

# Coverage with a per-package floor (COVER_FLOOR percent) over the library
# packages. The profile lands in cover.out for `go tool cover -html`.
cover:
	$(GO) test -coverprofile=cover.out ./internal/... . >cover.txt; \
	status=$$?; cat cover.txt; \
	if [ $$status -ne 0 ]; then rm -f cover.txt; exit $$status; fi
	@awk -v floor=$(COVER_FLOOR) '/coverage:/ && $$1 == "ok" { \
		pct = $$5; sub(/%$$/, "", pct); \
		if (pct + 0 < floor) { printf "cover: %s below floor (%s%% < %d%%)\n", $$2, pct, floor; bad = 1 } \
	} END { exit bad }' cover.txt && echo "cover: all packages >= $(COVER_FLOOR)%"
	@rm -f cover.txt

# Streaming-format gate run against the real CLIs: generate a trace, take
# its canonical text form (one parse/serialize pass fixes the listing's
# millisecond precision and ordering), then require text -> binary .g2gt ->
# text to reproduce it byte for byte (the format's lossless contract; see
# DESIGN.md "Trace pipeline").
trace-roundtrip:
	@dir=$$(mktemp -d); \
	$(GO) run ./cmd/tracegen -preset infocom05 -out $$dir/raw.txt && \
	$(GO) run ./cmd/traceconv -in $$dir/raw.txt -out $$dir/a.txt && \
	$(GO) run ./cmd/traceconv -in $$dir/a.txt -out $$dir/a.g2gt && \
	$(GO) run ./cmd/traceconv -in $$dir/a.g2gt -out $$dir/b.txt && \
	cmp $$dir/a.txt $$dir/b.txt; \
	status=$$?; rm -rf $$dir; \
	if [ $$status -ne 0 ]; then echo "trace-roundtrip: FAILED"; exit $$status; fi; \
	echo "trace-roundtrip: text -> binary -> text byte-identical"

# Crash-safety gate run against the real CLI: an audited preset run is
# killed (SIGTERM) mid-flight with checkpointing on, resumed from the
# flushed checkpoint, and its audit digest must be byte-identical to an
# uninterrupted reference run of the same configuration (the determinism
# contract; see DESIGN.md "Checkpoint & recovery").
kill-resume:
	@dir=$$(mktemp -d); status=1; \
	$(GO) build -o $$dir/g2gsim ./cmd/g2gsim && \
	$$dir/g2gsim -preset infocom05 -audit -seed 7 >$$dir/ref.out 2>&1 && \
	{ $$dir/g2gsim -preset infocom05 -audit -seed 7 -checkpoint-dir $$dir/ckpt >$$dir/int.out 2>&1 & \
	  pid=$$!; sleep 3; kill -TERM $$pid 2>/dev/null; wait $$pid; \
	  test -f $$dir/ckpt/run.ckpt || { echo "kill-resume: no checkpoint flushed (run finished before the kill?)"; cat $$dir/int.out; rm -rf $$dir; exit 1; }; \
	  $$dir/g2gsim -preset infocom05 -audit -seed 7 -checkpoint-dir $$dir/ckpt -resume >$$dir/res.out 2>&1 && \
	  grep digest= $$dir/ref.out >$$dir/ref.digest && \
	  grep digest= $$dir/res.out >$$dir/res.digest && \
	  cmp $$dir/ref.digest $$dir/res.digest; }; \
	status=$$?; \
	if [ $$status -ne 0 ]; then echo "kill-resume: FAILED"; cat $$dir/ref.out $$dir/int.out $$dir/res.out 2>/dev/null; fi; \
	rm -rf $$dir; \
	if [ $$status -ne 0 ]; then exit $$status; fi; \
	echo "kill-resume: audit digest identical across kill/resume"

# Intra-run parallelism gate run against the real CLI: the same audited
# preset run at -crypto-workers 1 (sequential) and 0 (all CPUs) must print
# byte-identical audit digests (the determinism contract; see DESIGN.md
# "Intra-run concurrency").
crypto-matrix:
	@dir=$$(mktemp -d); status=1; \
	$(GO) build -o $$dir/g2gsim ./cmd/g2gsim && \
	$$dir/g2gsim -preset infocom05 -protocol g2g-epidemic -ttl 10m -interval 60s -deviants 8 -audit -seed 7 -crypto-workers 1 >$$dir/seq.out 2>&1 && \
	$$dir/g2gsim -preset infocom05 -protocol g2g-epidemic -ttl 10m -interval 60s -deviants 8 -audit -seed 7 -crypto-workers 0 >$$dir/par.out 2>&1 && \
	grep digest= $$dir/seq.out >$$dir/seq.digest && \
	grep digest= $$dir/par.out >$$dir/par.digest && \
	cmp $$dir/seq.digest $$dir/par.digest; \
	status=$$?; \
	if [ $$status -ne 0 ]; then echo "crypto-matrix: FAILED"; cat $$dir/seq.out $$dir/par.out 2>/dev/null; fi; \
	rm -rf $$dir; \
	if [ $$status -ne 0 ]; then exit $$status; fi; \
	echo "crypto-matrix: audit digest identical at 1 and NumCPU crypto workers"

# Sharded-execution gate run against the real CLI: the same audited preset
# run at -shards 1 (sequential) and 0 (all CPUs) must print byte-identical
# audit digests (the determinism contract; see DESIGN.md "Sharded
# execution").
shard-matrix:
	@dir=$$(mktemp -d); status=1; \
	$(GO) build -o $$dir/g2gsim ./cmd/g2gsim && \
	$$dir/g2gsim -preset infocom05 -protocol g2g-epidemic -ttl 10m -interval 60s -deviants 8 -audit -seed 7 -shards 1 >$$dir/seq.out 2>&1 && \
	$$dir/g2gsim -preset infocom05 -protocol g2g-epidemic -ttl 10m -interval 60s -deviants 8 -audit -seed 7 -shards 0 >$$dir/par.out 2>&1 && \
	grep digest= $$dir/seq.out >$$dir/seq.digest && \
	grep digest= $$dir/par.out >$$dir/par.digest && \
	cmp $$dir/seq.digest $$dir/par.digest; \
	status=$$?; \
	if [ $$status -ne 0 ]; then echo "shard-matrix: FAILED"; cat $$dir/seq.out $$dir/par.out 2>/dev/null; fi; \
	rm -rf $$dir; \
	if [ $$status -ne 0 ]; then exit $$status; fi; \
	echo "shard-matrix: audit digest identical at 1 and NumCPU warm-up shards"

check: build vet test race

# ci is the documented verification entry point: build, vet, the coverage
# floor, the race pass, the benchmark smoke pass, the trace-format round-trip
# gate, the kill/resume crash-safety gate, the crypto-worker and warm-up
# shard determinism matrices, a quick-mode experiment smoke run through the
# parallel scheduler, and a fully audited honest run on each preset (the
# auditor fails the command on any invariant violation).
ci: build vet cover race bench-smoke trace-roundtrip kill-resume crypto-matrix shard-matrix
	$(GO) run ./cmd/g2gexp -experiment secV -quick -jobs 0 >/dev/null
	$(GO) run ./cmd/g2gsim -preset infocom05 -protocol g2g-epidemic -ttl 10m -interval 60s -audit >/dev/null
	$(GO) run ./cmd/g2gsim -preset cambridge06 -protocol g2g-delegation-frequency -ttl 10m -interval 60s -audit >/dev/null
	@echo "ci: OK"
