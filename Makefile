GO ?= go

.PHONY: all build test vet race bench check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The observability and metrics packages are the concurrency-sensitive ones
# (atomic counters, sinks shared across goroutines, the progress reporter).
race:
	$(GO) test -race ./internal/obs ./internal/metrics ./internal/engine

# One iteration per benchmark: smoke-checks the paper-artifact benches and
# BenchmarkTelemetryOverhead without the full measurement cost.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

check: build vet test race
