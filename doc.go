// Package give2get is a library implementation of "Give2Get: Forwarding in
// Social Mobile Wireless Networks of Selfish Individuals" (Mei & Stefa,
// ICDCS 2010): forwarding protocols for pocket switched networks that remain
// Nash equilibria when every node is selfish.
//
// The package exposes a compact facade over the full simulation stack:
//
//   - Trace handling: synthetic community-structured contact traces
//     (Infocom05/Cambridge06-like presets), CRAWDAD-style parsing, statistics
//     and k-clique community detection.
//   - Protocols: Epidemic, G2G Epidemic, Delegation (Destination Frequency /
//     Destination Last Contact) and G2G Delegation, with droppers, liars,
//     cheaters, and "selfish with outsiders" variants.
//   - Simulation: trace-driven runs with the paper's workload, yielding
//     success rate, delay, cost, and misbehavior-detection metrics.
//   - Experiments: drivers that regenerate every table and figure of the
//     paper's evaluation.
//
// # Quick start
//
//	tr, _ := give2get.GenerateTrace(give2get.PresetInfocom05, 42)
//	res, _ := give2get.Run(give2get.SimulationConfig{
//		Trace:    tr,
//		Protocol: give2get.G2GEpidemic,
//		TTL:      30 * time.Minute,
//		Seed:     1,
//	})
//	fmt.Printf("delivered %.1f%% at cost %.1f replicas/message\n",
//		res.SuccessRate, res.Cost)
//
// See the examples directory for runnable scenarios and cmd/g2gexp for the
// paper-reproduction harness.
package give2get
