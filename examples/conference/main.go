// Conference: the paper's motivating scenario. Attendees of a conference
// exchange messages device-to-device; a growing fraction of them install a
// "selfish patch" that drops everything they are asked to relay. Watch
// vanilla Epidemic Forwarding collapse — and G2G Epidemic hold its delivery
// rate while exposing the free-riders within minutes.
package main

import (
	"fmt"
	"log"
	"time"

	"give2get"
)

func main() {
	tr, err := give2get.GenerateTrace(give2get.PresetInfocom05, 42)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := tr.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conference trace: %d nodes over %v\n\n", tr.Nodes(), stats.Span)

	fmt.Println("droppers  epidemic-delivery%  g2g-delivery%  g2g-detected%  detect-after-TTL")
	for _, droppers := range []int{0, 10, 20, 30} {
		deviants := make([]int, droppers)
		for i := range deviants {
			deviants[i] = (i * 3) % tr.Nodes()
		}
		deviants = unique(deviants)

		base := give2get.SimulationConfig{
			Trace:           tr,
			TTL:             30 * time.Minute,
			Seed:            7,
			MessageInterval: 8 * time.Second,
			Deviants:        deviants,
			Deviation:       give2get.Droppers,
		}

		epidemic := base
		epidemic.Protocol = give2get.Epidemic
		epiRes, err := give2get.Run(epidemic)
		if err != nil {
			log.Fatal(err)
		}

		g2g := base
		g2g.Protocol = give2get.G2GEpidemic
		g2gRes, err := give2get.Run(g2g)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%8d  %18.1f  %13.1f  %13.1f  %16v\n",
			len(deviants), epiRes.SuccessRate, g2gRes.SuccessRate,
			g2gRes.DetectionRate, g2gRes.MeanDetectionTime.Round(time.Second))
	}

	fmt.Println("\nEvery exposed dropper carries a proof of misbehavior signed by")
	fmt.Println("its own key, so the network evicts it without trusting the accuser.")
}

func unique(in []int) []int {
	seen := make(map[int]struct{}, len(in))
	out := in[:0]
	for _, v := range in {
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}
