// Audit: the full deviation taxonomy under G2G Delegation Forwarding.
// Droppers discard custody, liars under-report forwarding quality, cheaters
// rewrite message quality labels — and a second round restricts each
// deviation to outsiders ("selfish with outsiders", Section V-A). The run
// reports how reliably and how fast each strategy is exposed.
package main

import (
	"fmt"
	"log"
	"time"

	"give2get"
)

func main() {
	tr, err := give2get.GenerateTrace(give2get.PresetInfocom05, 42)
	if err != nil {
		log.Fatal(err)
	}

	deviants := []int{1, 5, 9, 14, 18, 22, 27, 31, 36, 40}
	fmt.Printf("G2G Delegation audit on %s: %d deviants of %d nodes\n\n",
		tr.Name(), len(deviants), tr.Nodes())
	fmt.Println("deviation             scope      exposed%  mean time after TTL")

	for _, outsiders := range []bool{false, true} {
		for _, deviation := range []give2get.Deviation{give2get.Droppers,
			give2get.Liars, give2get.Cheaters} {
			res, err := give2get.Run(give2get.SimulationConfig{
				Trace:           tr,
				Protocol:        give2get.G2GDelegationLastContact,
				TTL:             45 * time.Minute,
				Seed:            11,
				MessageInterval: 8 * time.Second,
				Deviants:        deviants,
				Deviation:       deviation,
				OnlyOutsiders:   outsiders,
			})
			if err != nil {
				log.Fatal(err)
			}
			scope := "everyone"
			if outsiders {
				scope = "outsiders"
			}
			fmt.Printf("%-20s  %-9s  %7.0f%%  %v\n",
				deviation+"s", scope, res.DetectionRate,
				res.MeanDetectionTime.Round(time.Second))
			if res.FalseAccusations != 0 {
				log.Fatalf("a faithful node was framed — impossible by construction")
			}
		}
	}

	fmt.Println("\nNo honest node can be framed: every proof of misbehavior embeds a")
	fmt.Println("statement signed by the accused, which the whole network re-verifies.")
}
