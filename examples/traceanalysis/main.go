// Traceanalysis: inspect a contact dataset the way the PSN literature
// characterizes the real ones — inter-contact time distribution (the CCDF
// whose heavy tail with exponential cut-off the Give2Get test phases rely
// on), community structure, and headline statistics. Useful for validating
// a custom trace before running forwarding experiments on it.
//
// With no arguments it analyzes the built-in synthetic presets; pass trace
// file paths (CRAWDAD text or binary .g2gt, the format is sniffed) to
// analyze your own datasets:
//
//	go run ./examples/traceanalysis big.g2gt contacts.txt
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"give2get"
)

func main() {
	if paths := os.Args[1:]; len(paths) > 0 {
		for _, path := range paths {
			tr, err := give2get.OpenTrace(path)
			if err != nil {
				log.Fatal(err)
			}
			analyze(tr)
		}
		return
	}
	for _, preset := range []give2get.Preset{give2get.PresetInfocom05, give2get.PresetCambridge06} {
		tr, err := give2get.GenerateTrace(preset, 42)
		if err != nil {
			log.Fatal(err)
		}
		analyze(tr)
	}
}

func analyze(tr *give2get.Trace) {
	stats, err := tr.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== %s ===\n", tr.Name())
	fmt.Printf("nodes %d, contacts %d over %v\n", stats.Nodes, stats.Contacts,
		stats.Span.Round(time.Hour))
	fmt.Printf("mean contact %v, mean inter-contact %v\n",
		stats.MeanContact.Round(time.Second),
		stats.MeanInterContact.Round(time.Minute))

	comms, err := tr.Communities()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k-clique communities: %d (sizes:", len(comms))
	for _, c := range comms {
		fmt.Printf(" %d", len(c))
	}
	fmt.Println(")")

	// A compact log-log view of the inter-contact CCDF: the paper's test
	// phase (Δ2 = 2Δ1) works because most pairs re-meet within tens of
	// minutes, i.e. the CCDF has already fallen steeply by ~1 h.
	fmt.Println("inter-contact CCDF (fraction of re-meet gaps exceeding T):")
	ccdf, err := tr.InterContactCCDF(24)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range ccdf {
		if p.T < time.Minute {
			continue
		}
		bar := strings.Repeat("#", int(p.Fraction*40))
		fmt.Printf("  %8v %5.1f%% %s\n", p.T.Round(time.Minute), 100*p.Fraction, bar)
	}
	fmt.Println()
}
