// Campus: students across three college communities relay messages for one
// another with Delegation Forwarding, which exploits heterogeneous contact
// rates to deliver at a fraction of Epidemic's cost. Some students lie about
// their forwarding quality to dodge relay work; G2G Delegation's
// test-by-destination audit exposes them from their own signed claims.
package main

import (
	"fmt"
	"log"
	"time"

	"give2get"
)

func main() {
	tr, err := give2get.GenerateTrace(give2get.PresetCambridge06, 42)
	if err != nil {
		log.Fatal(err)
	}
	comms, err := tr.Communities()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campus trace: %d students, %d communities detected by k-clique percolation\n",
		tr.Nodes(), len(comms))
	for i, c := range comms {
		fmt.Printf("  community %d: %d members\n", i, len(c))
	}

	// Cost of delegation vs epidemic on an all-honest campus.
	fmt.Println("\nall-honest comparison (TTL 75m delegation, 35m epidemic):")
	for _, p := range []give2get.Protocol{give2get.Epidemic, give2get.DelegationLastContact,
		give2get.G2GDelegationLastContact} {
		ttl := 75 * time.Minute
		if p == give2get.Epidemic {
			ttl = 35 * time.Minute
		}
		res, err := give2get.Run(give2get.SimulationConfig{
			Trace:           tr,
			Protocol:        p,
			TTL:             ttl,
			Seed:            3,
			MessageInterval: 8 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s delivery %5.1f%%  cost %5.1f replicas/msg  delay %v\n",
			p, res.SuccessRate, res.Cost, res.MeanDelay.Round(time.Second))
	}

	// Liars claim quality zero to every quality query. The destination
	// audits the sender-embedded declarations against its own symmetric
	// encounter record and broadcasts proofs of lying.
	fmt.Println("\nliars on campus (G2G Delegation, Destination Last Contact):")
	liars := []int{2, 8, 15, 21, 28, 33}
	res, err := give2get.Run(give2get.SimulationConfig{
		Trace:           tr,
		Protocol:        give2get.G2GDelegationLastContact,
		TTL:             75 * time.Minute,
		Seed:            3,
		MessageInterval: 8 * time.Second,
		Deviants:        liars,
		Deviation:       give2get.Liars,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d liars planted, %.0f%% exposed (mean %v after message TTL), %d honest nodes framed\n",
		len(liars), res.DetectionRate, res.MeanDetectionTime.Round(time.Second),
		res.FalseAccusations)
}
