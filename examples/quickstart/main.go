// Quickstart: generate a conference-like contact trace, run G2G Epidemic
// Forwarding over it, and print the headline metrics.
package main

import (
	"fmt"
	"log"
	"time"

	"give2get"
)

func main() {
	// A synthetic stand-in for the Infocom 05 trace: 41 attendees, 3 days.
	tr, err := give2get.GenerateTrace(give2get.PresetInfocom05, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace %s: %d nodes, %d contacts\n", tr.Name(), tr.Nodes(), tr.Contacts())

	// Run the paper's flagship protocol on a 3-hour window with the
	// standard workload (Poisson messages, TTL 30 min, Δ2 = 2Δ1).
	res, err := give2get.Run(give2get.SimulationConfig{
		Trace:    tr,
		Protocol: give2get.G2GEpidemic,
		TTL:      30 * time.Minute,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("generated: %d messages\n", res.Generated)
	fmt.Printf("delivered: %d (%.1f%%)\n", res.Delivered, res.SuccessRate)
	fmt.Printf("delay:     %v mean\n", res.MeanDelay.Round(time.Second))
	fmt.Printf("cost:      %.1f replicas per message (%.1f by delivery time)\n",
		res.Cost, res.CostToDelivery)
}
