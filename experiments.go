package give2get

import (
	"strings"

	"give2get/internal/experiments"
	"give2get/internal/sim"
)

func experimentIDs() []string {
	return experiments.IDs()
}

func runExperiment(id string, opts ExperimentOptions) (string, error) {
	tables, err := experiments.Run(id, experiments.Options{
		Quick:           opts.Quick,
		Seed:            opts.Seed,
		Repeats:         opts.Repeats,
		Jobs:            opts.Jobs,
		Audit:           opts.Audit,
		TracePath:       opts.TracePath,
		Context:         opts.Context,
		CheckpointDir:   opts.CheckpointDir,
		CheckpointEvery: sim.Time(opts.CheckpointEvery),
		Resume:          opts.Resume,
		Retries:         opts.Retries,
		CryptoWorkers:   opts.CryptoWorkers,
		Shards:          opts.Shards,
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for i, tbl := range tables {
		if i > 0 {
			b.WriteByte('\n')
		}
		if err := tbl.Render(&b); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}
